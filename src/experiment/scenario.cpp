#include "experiment/scenario.h"

#include <algorithm>
#include <map>

#include "adversary/delay_policies.h"
#include "core/sync_protocol.h"
#include "experiment/registry.h"
#include "sim/simulator.h"
#include "trace/skew_tracker.h"
#include "util/contracts.h"

namespace stclock::experiment {

namespace {

struct PulseLog {
  // pulse real times per node, indexed by round.
  std::vector<std::map<Round, RealTime>> by_node;
  std::vector<RealTime> first_pulse;  // -1 until seen
};

/// Pulse / liveness / joiner metrics, collected only for kSyncProtocol
/// scenarios (baselines have no acceptance events to observe).
void collect_pulse_metrics(const ScenarioSpec& spec, const PulseLog& pulses,
                           const std::vector<SyncProtocol*>& protocols,
                           std::uint32_t honest_count, NodeId first_joiner,
                           ScenarioResult& result) {
  // A node is "regular" if it is up for the whole run: not a late joiner and
  // not scheduled to churn out. Only regular nodes anchor the liveness /
  // period / pulse-count metrics; joiners and churners are judged by their
  // integration metrics instead.
  const auto regular = [&spec, first_joiner](NodeId id) {
    return id >= spec.churn_nodes && id < first_joiner;
  };

  // Pulse spread per round: only rounds every regular honest node completed.
  std::map<Round, std::pair<RealTime, RealTime>> round_window;  // min,max
  std::map<Round, std::uint32_t> round_count;
  std::uint64_t regular_nodes = 0;
  for (NodeId id = 0; id < honest_count; ++id) {
    if (regular(id)) ++regular_nodes;
    for (const auto& [round, t] : pulses.by_node[id]) {
      auto [it, inserted] = round_window.try_emplace(round, t, t);
      if (!inserted) {
        it->second.first = std::min(it->second.first, t);
        it->second.second = std::max(it->second.second, t);
      }
      if (regular(id)) ++round_count[round];
    }
  }
  for (const auto& [round, window] : round_window) {
    if (round_count[round] == regular_nodes) {
      result.pulse_spread = std::max(result.pulse_spread, window.second - window.first);
    }
  }

  // Per-node periods and pulse counts. A churned node's gap across its own
  // downtime is not an inter-pulse period of a running clock, so period
  // stats come from regular nodes only.
  result.min_period = kTimeInfinity;
  bool any_period = false;
  result.min_pulses = UINT64_MAX;
  for (NodeId id = 0; id < honest_count; ++id) {
    if (!regular(id)) continue;
    const auto& log = pulses.by_node[id];
    RealTime prev = -1;
    for (const auto& [round, t] : log) {
      if (prev >= 0) {
        result.min_period = std::min(result.min_period, t - prev);
        result.max_period = std::max(result.max_period, t - prev);
        any_period = true;
      }
      prev = t;
    }
    result.min_pulses = std::min<std::uint64_t>(result.min_pulses, log.size());
    result.max_pulses = std::max<std::uint64_t>(result.max_pulses, log.size());
  }
  if (!any_period) result.min_period = 0;
  if (result.min_pulses == UINT64_MAX) result.min_pulses = 0;

  // Liveness: nobody stalls — every regular honest node is within one round
  // of the front, and everyone pulsed at least twice.
  Round front = 0, back = UINT64_MAX;
  result.rounds_completed = UINT64_MAX;
  for (NodeId id = 0; id < honest_count; ++id) {
    if (!regular(id)) continue;
    const Round last = protocols[id]->last_round();
    front = std::max(front, last);
    back = std::min(back, last);
    result.rounds_completed = std::min<std::uint64_t>(result.rounds_completed, last);
  }
  result.live = result.min_pulses >= 2 && front <= back + 1;

  if (spec.joiners > 0) {
    result.joiners_integrated = true;
    for (NodeId id = first_joiner; id < honest_count; ++id) {
      if (!protocols[id]->integrated() || pulses.first_pulse[id] < 0) {
        result.joiners_integrated = false;
        continue;
      }
      result.join_latency =
          std::max(result.join_latency, pulses.first_pulse[id] - spec.join_time);
    }
    result.live = result.live && result.joiners_integrated;
  }

  if (spec.churn_nodes > 0) {
    result.churned_rejoined = true;
    for (NodeId id = 0; id < spec.churn_nodes; ++id) {
      // protocols[id] points at the post-rejoin incarnation; it must have
      // re-integrated and pulsed after the rejoin time.
      RealTime first_back = -1;
      for (const auto& [round, t] : pulses.by_node[id]) {
        (void)round;
        if (t >= spec.churn_rejoin) {
          first_back = t;
          break;
        }
      }
      if (!protocols[id]->integrated() || first_back < 0) {
        result.churned_rejoined = false;
        continue;
      }
      result.rejoin_latency =
          std::max(result.rejoin_latency, first_back - spec.churn_rejoin);
    }
    result.live = result.live && result.churned_rejoined;
  }
}

/// How many nodes the adversary drives: none without an attack, the
/// override when set, cfg.f otherwise. Shared by validate_spec and the
/// engine so load-time validation can never drift from run-time sizing.
std::uint32_t corrupt_count_for(const ScenarioSpec& spec) {
  return spec.attack == AttackKind::kNone ? 0
         : spec.corrupt_override > 0      ? spec.corrupt_override
                                          : spec.cfg.f;
}

/// The validated topology block: the base graph plus the compiled dynamic
/// schedule (null when the spec has no topology events).
struct CheckedTopology {
  std::shared_ptr<const Topology> base;
  std::shared_ptr<const CompiledTopologySchedule> schedule;
};

/// Validates the topology block and returns the built graph and compiled
/// schedule: shape errors (e.g. a 2-node ring) surface from the generator, a
/// sampled G(n, p) must come out connected, topology events must name real
/// nodes and keep every epoch connected — or liveness claims are vacuous.
/// Shared by validate_spec (scenario files fail at load time) and the
/// engine, which reuses the returned instances instead of building twice.
CheckedTopology checked_topology(const ScenarioSpec& spec) {
  if (spec.topology == TopologyKind::kGnp) {
    ST_REQUIRE(spec.gnp_p > 0 && spec.gnp_p <= 1, "run_scenario: gnp_p must lie in (0, 1]");
  }
  CheckedTopology out;
  out.base = build_topology(spec.topology, spec.cfg.n, spec.gnp_p, spec.topology_seed,
                            spec.expander_k);
  if (!out.base->is_complete()) {
    ST_REQUIRE(out.base->is_connected(),
               "run_scenario: topology is disconnected (raise gnp_p or change topology_seed)");
  }
  if (spec.topology_events.empty()) return out;

  TopologySchedule schedule;
  for (const TopologyEventSpec& ev : spec.topology_events) {
    switch (ev.kind) {
      case TopologyEventSpec::Kind::kAddEdge:
      case TopologyEventSpec::Kind::kRemoveEdge:
        // Mirrors the partition_group check: a dedicated load-time error for
        // events naming nodes the fleet does not have.
        ST_REQUIRE(ev.a < spec.cfg.n && ev.b < spec.cfg.n,
                   "run_scenario: topology_events names nodes outside [0, n)");
        if (ev.kind == TopologyEventSpec::Kind::kAddEdge) {
          schedule.add_edge(ev.at, ev.a, ev.b);
        } else {
          schedule.remove_edge(ev.at, ev.a, ev.b);
        }
        break;
      case TopologyEventSpec::Kind::kSetGraph:
        schedule.set_graph(ev.at, build_topology(ev.set, spec.cfg.n, spec.gnp_p,
                                                 spec.topology_seed, spec.expander_k));
        break;
    }
  }
  out.schedule =
      std::make_shared<const CompiledTopologySchedule>(schedule.compile(out.base));
  const std::size_t broken = out.schedule->first_disconnected_epoch();
  ST_REQUIRE(broken == CompiledTopologySchedule::kAllConnected,
             "run_scenario: topology_events epoch " + std::to_string(broken) +
                 " disconnects the topology (use partition_group for deliberate "
                 "partitions)");
  return out;
}

/// Everything validate_spec checks EXCEPT the topology block, so the engine
/// can run these and keep the topology instance from checked_topology.
void validate_spec_structure(const ScenarioSpec& spec, EngineMode mode) {
  const SyncConfig& cfg = spec.cfg;
  if (mode == EngineMode::kSyncProtocol) {
    cfg.validate();
    ST_REQUIRE(spec.horizon > 0, "run_scenario: horizon must be positive");
    ST_REQUIRE(spec.joiners + cfg.f < cfg.n,
               "run_scenario: need at least one regular honest node");
  } else {
    ST_REQUIRE(cfg.n > cfg.f, "run_scenario: need at least one honest node");
    ST_REQUIRE(spec.horizon > 0, "run_scenario: horizon must be positive");
    ST_REQUIRE(spec.joiners == 0, "run_scenario: baselines do not support joiners");
    ST_REQUIRE(spec.churn_nodes == 0, "run_scenario: baselines do not support churn");
  }
  if (spec.churn_nodes > 0) {
    ST_REQUIRE(spec.churn_leave > 0, "run_scenario: churn_leave must be positive");
    ST_REQUIRE(spec.churn_rejoin > spec.churn_leave,
               "run_scenario: churn_rejoin must come after churn_leave");
  }
  if (spec.partition_group > 0) {
    ST_REQUIRE(spec.partition_group <= cfg.n,
               "run_scenario: partition_group names nodes outside [0, n)");
    ST_REQUIRE(spec.partition_group < cfg.n,
               "run_scenario: partition_group must leave both sides non-empty");
    ST_REQUIRE(spec.partition_start >= 0 && spec.partition_end > spec.partition_start,
               "run_scenario: need 0 <= partition_start < partition_end");
  }
  if (spec.broadcast_mode == BroadcastMode::kSampled) {
    ST_REQUIRE(spec.sample_size >= 1,
               "run_scenario: broadcast_mode=sampled needs sample_size >= 1");
  }
  ST_REQUIRE(spec.sim_threads >= 1 && spec.sim_threads <= 64,
             "run_scenario: sim_threads must lie in [1, 64]");
  const std::uint32_t corrupt_count = corrupt_count_for(spec);
  ST_REQUIRE(corrupt_count + spec.joiners < cfg.n,
             "run_scenario: need at least one regular honest node");
  const std::uint32_t honest_count = cfg.n - corrupt_count;
  ST_REQUIRE(spec.churn_nodes < honest_count - spec.joiners,
             "run_scenario: churn must leave at least one always-up honest node");
  if (!spec.corrupt_at.empty()) {
    RealTime prev = 0;
    for (const RealTime at : spec.corrupt_at) {
      ST_REQUIRE(at > 0, "run_scenario: corrupt_at times must be positive");
      ST_REQUIRE(at >= prev, "run_scenario: corrupt_at times must be non-decreasing");
      prev = at;
    }
    ST_REQUIRE(spec.corrupt_at.back() < spec.horizon,
               "run_scenario: corrupt_at must fall before the horizon (there is "
               "nothing to stabilize after it)");
    ST_REQUIRE(spec.corrupt_fraction > 0 && spec.corrupt_fraction <= 1,
               "run_scenario: corrupt_fraction must lie in (0, 1]");
    ST_REQUIRE(spec.corrupt_kinds != 0,
               "run_scenario: corrupt_kinds must name at least one kind");
    ST_REQUIRE((spec.corrupt_kinds & ~kCorruptAll) == 0,
               "run_scenario: corrupt_kinds has unknown bits");
  }
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  const ProtocolRegistry::Entry& entry = ProtocolRegistry::global().at(spec.protocol);
  ScenarioResult result = run_scenario_with(resolved_spec(spec), entry.mode, entry.factory);
  result.protocol = spec.protocol;
  return result;
}

ScenarioSpec resolved_spec(const ScenarioSpec& spec) {
  const ProtocolRegistry::Entry* entry = ProtocolRegistry::global().find(spec.protocol);
  if (entry == nullptr || !entry->prepare) return spec;
  ScenarioSpec adjusted = spec;
  entry->prepare(adjusted);
  return adjusted;
}

void validate_spec(const ScenarioSpec& spec, EngineMode mode) {
  validate_spec_structure(spec, mode);
  (void)checked_topology(spec);
}

std::uint32_t broadcast_fanin(const ScenarioSpec& spec) {
  const std::uint32_t n = spec.cfg.n;
  const std::uint32_t peers = n > 0 ? n - 1 : 0;
  // Design minimum degree of the generator families whose degree is known
  // without building the graph; 0 = the full fleet (complete) or a degree
  // the engine cannot bound by design (gnp, custom).
  std::uint32_t degree = 0;
  switch (spec.topology) {
    case TopologyKind::kRing: degree = 2; break;
    case TopologyKind::kStar: degree = 1; break;
    case TopologyKind::kTorus: {
      // Same near-square factorization the generator uses; the grid's
      // minimum degree counts each dimension's links with the <= 2 guards.
      std::uint32_t rows = 1;
      for (std::uint32_t d = 1; static_cast<std::uint64_t>(d) * d <= n; ++d) {
        if (n % d == 0) rows = d;
      }
      const std::uint32_t cols = rows > 0 ? n / rows : 0;
      const auto dim = [](std::uint32_t len) -> std::uint32_t {
        return len > 2 ? 2 : (len == 2 ? 1 : 0);
      };
      degree = dim(rows) + dim(cols);
      break;
    }
    case TopologyKind::kExpander: degree = std::min(spec.expander_k, peers); break;
    case TopologyKind::kComplete:
    case TopologyKind::kGnp:
    case TopologyKind::kCustom: degree = 0; break;
  }
  switch (spec.broadcast_mode) {
    case BroadcastMode::kFull: return 0;  // legacy thresholds, always
    case BroadcastMode::kNeighbors: return degree;
    case BroadcastMode::kSampled: {
      std::uint32_t s = spec.sample_size;
      if (degree > 0) s = std::min(s, degree);
      // A sample covering every peer is just the full fan-out.
      return s >= peers ? 0 : s;
    }
  }
  return 0;
}

ScenarioResult run_scenario_with(const ScenarioSpec& spec, EngineMode mode,
                                 const ProcessFactory& factory) {
  const SyncConfig& cfg = spec.cfg;
  const bool sync_mode = mode == EngineMode::kSyncProtocol;

  ScenarioResult result;
  result.protocol = spec.protocol;

  validate_spec_structure(spec, mode);
  // Always installed, including the (default) complete graph: the complete
  // fast paths in the simulator are pinned bit-identical to the legacy
  // topology-free engine by the golden trace suite. The schedule is only
  // installed when the spec has topology events, so a static spec arms no
  // epoch machinery at all.
  const CheckedTopology topology = checked_topology(spec);
  result.topology_epochs = topology.schedule ? topology.schedule->epoch_count() : 1;
  if (sync_mode) result.bounds = theory::derive_bounds(cfg);

  Rng rng(spec.seed);
  std::vector<HardwareClock> clocks = build_clock_fleet(
      spec.drift, cfg.n, cfg.rho, cfg.initial_sync, spec.horizon, cfg.period, rng);

  const crypto::KeyRegistry registry(cfg.n, spec.seed ^ 0x5eedULL);

  SimParams params;
  params.n = cfg.n;
  params.tdel = cfg.tdel;
  params.seed = rng.next_u64();
  params.topology = topology.base;
  params.schedule = topology.schedule;
  params.broadcast_mode = spec.broadcast_mode;
  params.sample_size = spec.sample_size;
  params.sim_threads = spec.sim_threads;
  // The runaway-protocol valve, scaled to the run: a healthy protocol
  // dispatches O(fan-out) events per node per round, so give each
  // node-round 256 events before calling it runaway. The 50M floor keeps
  // small scenarios on the default; the product term admits sparse-fabric
  // runs at n = 10^6 (a few hundred million legitimate events) that the
  // flat default rejected.
  const auto rounds_budget = static_cast<std::uint64_t>(spec.horizon / cfg.period) + 2;
  params.max_events =
      std::max<std::uint64_t>(params.max_events, 256ULL * cfg.n * rounds_budget);
  for (const RealTime at : spec.corrupt_at) {
    CorruptionEvent ev;
    ev.at = at;
    ev.fraction = spec.corrupt_fraction;
    ev.kinds = spec.corrupt_kinds;
    // Scramble magnitude in the protocol's natural unit: several periods,
    // so a scrambled clock lands rounds away from where it belongs.
    ev.clock_range = 4.0 * cfg.period;
    params.corruptions.push_back(ev);
  }
  std::unique_ptr<DelayPolicy> delay_policy =
      build_delay_policy(spec.delay, cfg.n, cfg.period, spec.seed);
  if (spec.partition_group > 0) {
    delay_policy = std::make_unique<PartitionDelay>(
        spec.partition_group, spec.partition_start, spec.partition_end,
        std::move(delay_policy));
  }
  Simulator sim(params, std::move(clocks), std::move(delay_policy), &registry);

  // Corrupted nodes take the highest ids; joiners the highest honest ids.
  const std::uint32_t corrupt_count = corrupt_count_for(spec);
  std::vector<NodeId> corrupt;
  for (NodeId id = cfg.n - corrupt_count; id < cfg.n; ++id) corrupt.push_back(id);
  const std::uint32_t honest_count = cfg.n - corrupt_count;
  // Churners take the lowest ids, joiners the highest honest ids; validate_spec
  // guaranteed the groups are disjoint with a regular node in between.
  const NodeId first_joiner = honest_count - spec.joiners;

  AttackParams attack_params;
  attack_params.period = cfg.period;
  attack_params.nominal_delay = cfg.tdel / 2;
  if (sync_mode) {
    attack_params.max_round =
        static_cast<Round>(spec.horizon / result.bounds.min_period) + 8;
    attack_params.variant = cfg.variant;
  } else {
    attack_params.max_round = static_cast<Round>(spec.horizon / cfg.period) + 8;
    attack_params.cnv_delta = spec.delta;
  }

  if (!corrupt.empty()) {
    sim.set_adversary(corrupt, make_attack(spec.attack, attack_params));
  }

  // The per-node pulse log only feeds sync-mode metrics (precision between
  // simultaneous rounds, liveness, joiner integration); baselines never
  // pulse, so at scale the empty vectors would still cost O(n) maps.
  PulseLog pulses;
  if (sync_mode) {
    pulses.by_node.resize(cfg.n);
    pulses.first_pulse.assign(cfg.n, -1.0);
  }

  // Non-null only in sync mode (and only for honest ids).
  std::vector<SyncProtocol*> protocols(cfg.n, nullptr);
  for (NodeId id = 0; id < honest_count; ++id) {
    const bool joining = id >= first_joiner;
    std::unique_ptr<Process> process = factory(spec, id, joining);
    ST_REQUIRE(process != nullptr, "run_scenario: factory returned no process");
    if (sync_mode) {
      auto* sync = dynamic_cast<SyncProtocol*>(process.get());
      ST_REQUIRE(sync != nullptr,
                 "run_scenario: kSyncProtocol factories must build SyncProtocol instances");
      protocols[id] = sync;
      sync->set_pulse_observer([&pulses, &sim](NodeId node, Round round) {
        pulses.by_node[node][round] = sim.now();
        if (pulses.first_pulse[node] < 0) pulses.first_pulse[node] = sim.now();
      });
      if (joining) sim.set_start_time(id, spec.join_time);
    }
    sim.set_process(id, std::move(process));
  }

  // Churn: the scheduled nodes crash at churn_leave and come back at
  // churn_rejoin as passively integrating processes (the factory's joining
  // path — exactly how a repaired process re-enters in the paper).
  for (NodeId id = 0; id < spec.churn_nodes; ++id) {
    sim.schedule_restart(
        id, spec.churn_leave, spec.churn_rejoin,
        [&spec, &factory, &protocols, &pulses, &sim, id]() -> std::unique_ptr<Process> {
          std::unique_ptr<Process> process = factory(spec, id, /*joining=*/true);
          ST_REQUIRE(process != nullptr, "run_scenario: factory returned no process");
          auto* sync = dynamic_cast<SyncProtocol*>(process.get());
          ST_REQUIRE(sync != nullptr,
                     "run_scenario: churn factories must build SyncProtocol instances");
          protocols[id] = sync;
          sync->set_pulse_observer([&pulses, &sim](NodeId node, Round round) {
            pulses.by_node[node][round] = sim.now();
            if (pulses.first_pulse[node] < 0) pulses.first_pulse[node] = sim.now();
          });
          return process;
        });
  }

  // Joiners only count toward skew once integrated (their pre-integration
  // clock is arbitrary by definition). The tracker reads the simulator's
  // CURRENT graph at every sample, so local skew is always measured against
  // the adjacency live at measurement time.
  // Metric-granularity floor for the explicit stepping loop below; hoisted
  // here because the scale policy derives the skew sampling gap from it.
  const Duration step = std::max(spec.skew_series_interval, 1e-3);
  const bool scale_mode = cfg.n >= kScaleMetricThreshold;

  // The integration predicate goes through the simulator's include probe (not
  // a tracker-private functor) so the parallel engine can answer it from the
  // committed pre-state when a hook samples mid-window.
  if (sync_mode) {
    sim.set_include_probe([&protocols](NodeId id) {
      return protocols[id] == nullptr || protocols[id]->integrated();
    });
  }
  SkewTracker skew(spec.skew_series_interval, nullptr);
  skew.set_steady_start(sync_mode ? 2 * result.bounds.max_period : 3 * cfg.period);
  // At scale, per-event O(n) sweeps dominate the run; decimate to half the
  // stepping granularity so every explicit step-loop sample still lands.
  if (scale_mode) skew.set_min_sample_gap(step * 0.5);
  if (!spec.corrupt_at.empty()) {
    // Recovery is judged from the LAST corruption event: the paper's
    // stabilization time is "from the last transient fault". Sync protocols
    // must re-enter their derived precision bound; baselines must get back
    // to however tight they were before the fault (threshold <= 0 = auto).
    skew.set_stabilization(spec.corrupt_at.back(),
                           sync_mode ? result.bounds.precision : 0.0);
  }
  // The envelope parameters the eventual report() call will use are fully
  // determined here (bounds are derived before the run), which is what lets
  // streaming mode fix them up-front and keep only O(1) sums per node.
  const double env_lo = sync_mode ? result.bounds.rate_lo : 1.0 / (1.0 + cfg.rho);
  const double env_hi = sync_mode ? result.bounds.rate_hi : 1.0 + cfg.rho;
  const RealTime env_steady = sync_mode ? 2 * result.bounds.max_period : 3 * cfg.period;
  EnvelopeTracker envelope(spec.envelope_interval);
  if (scale_mode) envelope.enable_streaming(env_lo, env_hi, env_steady);
  sim.set_post_event_hook([&skew, &envelope](const Simulator& s) {
    skew.sample(s);
    envelope.sample(s);
  });

  // Step the simulation so metrics get sampled at a bounded real-time
  // granularity even through event-quiet stretches (e.g. the unsynchronized
  // control generates no events at all).
  for (RealTime t = step; t < spec.horizon + step; t += step) {
    sim.run_until(std::min(t, spec.horizon));
    skew.sample(sim);
    envelope.sample(sim);
  }

  // --- Collect metrics ---
  result.max_skew = skew.max_skew();
  result.steady_skew = skew.steady_max_skew();
  result.local_skew = skew.local_skew();
  result.steady_local_skew = skew.steady_local_skew();
  result.skew_series = skew.series();

  if (sync_mode) {
    collect_pulse_metrics(spec, pulses, protocols, honest_count, first_joiner, result);

    // The envelope fit needs a few samples past the convergence prefix.
    if (spec.horizon > env_steady + 3 * spec.envelope_interval) {
      result.envelope = envelope.report(env_lo, env_hi, env_steady);
      result.rate_fit_tolerance =
          2 * result.bounds.precision / (spec.horizon - env_steady);
    }
  } else if (spec.horizon > 3 * cfg.period + 1.0) {
    // Baselines are judged against the raw hardware envelope.
    result.envelope = envelope.report(env_lo, env_hi, env_steady);
  }

  result.messages_sent = sim.counters().total_sent();
  result.bytes_sent = sim.counters().total_bytes();
  result.messages_dropped = sim.messages_dropped();
  result.events_dispatched = sim.events_dispatched();
  result.corruption_events = sim.corruption_events_fired();
  result.nodes_corrupted = sim.nodes_corrupted();
  result.parallel_windows = sim.parallel_windows();
  if (!spec.corrupt_at.empty()) {
    result.stabilized = skew.stabilized();
    result.stabilization_time = skew.stabilization_time();
  }
  return result;
}

}  // namespace stclock::experiment
