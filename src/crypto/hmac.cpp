#include "crypto/hmac.h"

#include <array>

namespace stclock::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlockSize = 64;

  // Keys longer than one block are hashed first.
  std::array<std::uint8_t, kBlockSize> block_key{};
  if (key.size() > kBlockSize) {
    const Digest d = sha256(key);
    std::copy(d.begin(), d.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace stclock::crypto
