// Experiment T2 — Resilience (tightness of the fault bounds).
//
// Claim: the authenticated algorithm tolerates exactly f <= ceil(n/2)-1
// Byzantine nodes and the signature-free algorithm exactly f <= ceil(n/3)-1.
// We sweep the number of *actually corrupted* nodes past the protocol's
// threshold: within the bound every metric holds; one past it, the adversary
// assembles quorums by itself and the unforgeability floor on the pulse rate
// collapses (min period far below the theoretical minimum).

#include "bench_common.h"

namespace stclock {
namespace {

std::vector<experiment::SweepCell> build_cells(std::uint64_t seed) {
  std::vector<experiment::SweepCell> cells;
  const struct {
    SyncConfig cfg;
    std::uint32_t max_corrupt;  // one past the bound: the breakdown row
  } sweeps[] = {{bench::default_auth_config(), 4}, {bench::default_echo_config(), 3}};
  for (const auto& sweep : sweeps) {
    for (std::uint32_t corrupt = 0; corrupt <= sweep.max_corrupt; ++corrupt) {
      experiment::SweepCell cell;
      cell.index = cells.size();
      cell.labels = {{"variant", sweep.cfg.variant_name()},
                     {"corrupt", std::to_string(corrupt)}};
      cell.spec = bench::adversarial_scenario(sweep.cfg, 20.0, seed);
      cell.spec.delay = DelayKind::kZero;  // give the adversary its best case
      cell.spec.corrupt_override = corrupt;
      if (corrupt == 0) cell.spec.attack = AttackKind::kNone;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T2 — Resilience sweep",
                      "auth correct iff corrupt <= ceil(n/2)-1; echo iff <= ceil(n/3)-1", opts);

  const std::vector<experiment::SweepCell> cells = build_cells(opts.seed);
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "n", "f(protocol)", "corrupt", "within-bound", "skew",
               "Dmax", "min-period", "period-floor", "live", "verdict"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SyncConfig& cfg = cells[i].spec.cfg;
    const std::uint32_t corrupt = cells[i].spec.corrupt_override;
    const experiment::ScenarioResult& r = results[i];
    const bool within = corrupt <= cfg.f;
    const bool floor_holds = r.min_period >= r.bounds.min_period - 1e-9;
    const bool skew_ok = r.steady_skew <= r.bounds.precision;
    table.add_row({cfg.variant_name(), std::to_string(cfg.n), std::to_string(cfg.f),
                   std::to_string(corrupt), within ? "yes" : "NO",
                   Table::sci(r.steady_skew), Table::sci(r.bounds.precision),
                   Table::num(r.min_period, 4), Table::num(r.bounds.min_period, 4),
                   r.live ? "yes" : "NO", floor_holds && skew_ok ? "ok" : "BROKEN"});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(spam-early attack, zero honest delays — the adversary's best case.\n"
               " Expect verdict=ok for corrupt <= f and BROKEN beyond: the pulse-rate\n"
               " floor collapses once the adversary can assemble quorums alone.)\n";
  return 0;
}
