#include "sim/network.h"

#include "util/contracts.h"

namespace stclock {

FixedDelay::FixedDelay(double fraction) : fraction_(fraction) {
  ST_REQUIRE(fraction >= 0 && fraction <= 1, "FixedDelay: fraction outside [0, 1]");
}

Duration FixedDelay::delay(NodeId, NodeId, RealTime, Duration tdel, Rng&) {
  return fraction_ * tdel;
}

Duration FixedDelay::min_delay(Duration tdel) const {
  // The very expression delay() evaluates, so the bound is FP-exact.
  return fraction_ * tdel;
}

UniformDelay::UniformDelay(double lo_fraction, double hi_fraction)
    : lo_(lo_fraction), hi_(hi_fraction) {
  ST_REQUIRE(lo_fraction >= 0 && hi_fraction <= 1 && lo_fraction <= hi_fraction,
             "UniformDelay: fractions must satisfy 0 <= lo <= hi <= 1");
}

Duration UniformDelay::delay(NodeId, NodeId, RealTime, Duration tdel, Rng& rng) {
  return rng.uniform(lo_ * tdel, hi_ * tdel);
}

Duration UniformDelay::min_delay(Duration tdel) const {
  // rng.uniform(a, b) computes a + (b - a) * u with u in [0, 1); adding a
  // non-negative rounded term to a never rounds below a, so every draw is
  // >= lo_ * tdel exactly as doubles.
  return lo_ * tdel;
}

LinkDelay::LinkDelay(double lo_fraction, double hi_fraction, std::uint64_t seed)
    : lo_(lo_fraction), hi_(hi_fraction), seed_(seed) {
  ST_REQUIRE(lo_fraction >= 0 && hi_fraction <= 1 && lo_fraction <= hi_fraction,
             "LinkDelay: fractions must satisfy 0 <= lo <= hi <= 1");
}

Duration LinkDelay::delay(NodeId from, NodeId to, RealTime, Duration tdel, Rng&) {
  // SplitMix64 finalizer over (seed, from, to): a stable per-link uniform
  // draw with no per-link storage and no shared-RNG consumption.
  std::uint64_t x = seed_ ^ (static_cast<std::uint64_t>(from) << 32 | to);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return (lo_ + (hi_ - lo_) * u) * tdel;
}

Duration LinkDelay::min_delay(Duration tdel) const {
  // delay() returns (lo_ + (hi_ - lo_) * u) * tdel with u in [0, 1): the
  // inner sum rounds to >= lo_, and multiplying two non-negative doubles is
  // monotone under round-to-nearest, so every link's fraction * tdel is
  // >= lo_ * tdel exactly.
  return lo_ * tdel;
}

}  // namespace stclock
