#pragma once

#include <cstdint>
#include <string>

#include "util/types.h"

/// Configuration of the Srikanth–Toueg synchronization algorithm.
namespace stclock {

/// Which broadcast primitive the algorithm runs over.
enum class Variant {
  kAuthenticated,  ///< signatures, n >= 2f+1, acceptance spread D = tdel
  kEcho,           ///< init/echo simulation, n >= 3f+1, D = 2*tdel
};

/// How clock corrections are applied.
enum class AdjustMode {
  kInstant,    ///< discontinuous C := kP + alpha (as analyzed in the paper)
  kAmortized,  ///< correction spread over a window (the standard smoothing)
};

struct SyncConfig {
  std::uint32_t n = 4;  ///< number of processes
  std::uint32_t f = 1;  ///< Byzantine faults to tolerate

  double rho = 1e-4;       ///< hardware drift bound: rates in [1/(1+rho), 1+rho]
  Duration tdel = 0.01;    ///< max message delay between correct processes (s)
  Duration period = 1.0;   ///< resynchronization period P (logical seconds)
  /// Adjustment constant alpha; <= 0 selects the default (1+rho)*D.
  Duration alpha = 0;
  /// Bound on the spread of hardware clocks at time 0 (initial synchrony).
  Duration initial_sync = 0.005;
  /// Permit initial_sync to exceed the steady-state precision bound. The
  /// algorithm still converges — the first accepted round anchors every
  /// correct clock to within the acceptance spread regardless of how far
  /// apart they started (processes skip rounds they slept through) — but
  /// the precision guarantee then only applies after that first round.
  bool allow_unsynchronized_start = false;

  Variant variant = Variant::kAuthenticated;
  AdjustMode adjust = AdjustMode::kInstant;
  /// Hardware-time window over which amortized corrections are spread;
  /// <= 0 selects half the minimum resynchronization period.
  Duration amortize_window = 0;

  [[nodiscard]] std::string variant_name() const;

  /// Throws std::logic_error if the configuration violates the model
  /// requirements (resilience bound, alpha < P, feasible period, ...).
  void validate() const;

  /// True iff (n, f) satisfies the variant's resilience requirement.
  [[nodiscard]] bool resilience_ok() const;
};

}  // namespace stclock
