#pragma once

#include <memory>

#include "util/rng.h"
#include "util/types.h"

/// Delay policies: the adversary's control over honest-to-honest message
/// delays. The model guarantees only that any message between correct
/// processes is delivered within tdel; *which* delay in [0, tdel] each
/// message gets is adversarial. A DelayPolicy encodes one such strategy.
/// Policies returning values outside [0, tdel] are clamped (and this is a
/// contract violation caught in debug checks).
namespace stclock {

/// Sentinel a DelayPolicy may return instead of a delay: the message is lost.
/// This steps OUTSIDE the Srikanth–Toueg model (which guarantees delivery
/// within tdel between correct processes); it exists for the dynamic-network
/// workloads — partitions that later heal — where the paper's liveness
/// guarantees are deliberately suspended for a window.
inline constexpr Duration kDropMessage = -1.0;

class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Delay for a message from honest `from` to honest `to` sent at `now`.
  /// Must lie in [0, tdel], or be exactly kDropMessage to lose the message.
  [[nodiscard]] virtual Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                                       Rng& rng) = 0;
};

/// Every message takes exactly `fraction * tdel`.
class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(double fraction);
  [[nodiscard]] Duration delay(NodeId, NodeId, RealTime, Duration tdel, Rng&) override;

 private:
  double fraction_;
};

/// Delay uniform in [lo_fraction, hi_fraction] * tdel.
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(double lo_fraction, double hi_fraction);
  [[nodiscard]] Duration delay(NodeId, NodeId, RealTime, Duration tdel, Rng& rng) override;

 private:
  double lo_, hi_;
};

}  // namespace stclock
