#include "clocks/logical_clock.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace stclock {

LogicalClock::LogicalClock(const HardwareClock& hw) : hw_(&hw) {
  const LocalTime h0 = hw.initial_value();
  pieces_.push_back(Piece{h0, h0, 1.0});
}

std::size_t LogicalClock::piece_at(LocalTime h) const {
  ST_REQUIRE(h >= pieces_.front().h_start, "LogicalClock: hardware time precedes clock start");
  auto it = std::upper_bound(pieces_.begin(), pieces_.end(), h,
                             [](LocalTime v, const Piece& p) { return v < p.h_start; });
  return static_cast<std::size_t>(std::distance(pieces_.begin(), it)) - 1;
}

LocalTime LogicalClock::read_at_hardware(LocalTime h) const {
  const Piece& p = pieces_[piece_at(h)];
  return p.value + p.slope * (h - p.h_start);
}

LocalTime LogicalClock::read(RealTime t) const { return read_at_hardware(hw_->read(t)); }

void LogicalClock::record(Duration delta) {
  total_adjustment_ += delta;
  max_abs_adjustment_ = std::max(max_abs_adjustment_, std::abs(delta));
  ++adjustment_count_;
}

void LogicalClock::adjust_instant(LocalTime h_now, Duration delta) {
  ST_REQUIRE(h_now >= pieces_.back().h_start,
             "LogicalClock: adjustments must move forward in hardware time");
  const LocalTime value_now = read_at_hardware(h_now);
  const double tail_slope = pieces_.back().slope;
  pieces_.push_back(Piece{h_now, value_now + delta, tail_slope});
  record(delta);
}

void LogicalClock::adjust_amortized(LocalTime h_now, Duration delta, Duration window) {
  ST_REQUIRE(h_now >= pieces_.back().h_start,
             "LogicalClock: adjustments must move forward in hardware time");
  ST_REQUIRE(window > 0, "LogicalClock: amortization window must be positive");
  ST_REQUIRE(delta >= 0 || -delta < window,
             "LogicalClock: negative correction too large for the window (would run backwards)");
  const LocalTime value_now = read_at_hardware(h_now);
  const double tail_slope = pieces_.back().slope;
  // Ramp piece: base slope of the tail plus the correction rate.
  pieces_.push_back(Piece{h_now, value_now, tail_slope + delta / window});
  pieces_.push_back(Piece{h_now + window, value_now + tail_slope * window + delta, tail_slope});
  record(delta);
}

void LogicalClock::adjust_override(LocalTime h_now, Duration delta) {
  ST_REQUIRE(h_now >= pieces_.front().h_start,
             "LogicalClock: override precedes clock start");
  // The value "now" is read against the pieces live at h_now BEFORE any
  // scheduled-future pieces are dropped, so the override lands relative to
  // what the clock actually reads at this instant.
  const LocalTime value_now = read_at_hardware(h_now);
  while (pieces_.back().h_start > h_now) pieces_.pop_back();
  // Slope resets to the nominal 1.0: if the override lands mid-ramp, the
  // ramp's rate modulation is part of the state being overwritten.
  pieces_.push_back(Piece{h_now, value_now + delta, 1.0});
  record(delta);
}

RealTime LogicalClock::when_reads(RealTime now, LocalTime target) const {
  const LocalTime h_now = hw_->read(now);
  if (read_at_hardware(h_now) >= target) return now;

  // Scan pieces forward from h_now for the first hardware time where the
  // logical value reaches `target`. Within a piece the value is affine with
  // positive slope except possibly at jump discontinuities between pieces.
  std::size_t idx = piece_at(h_now);
  LocalTime h_from = h_now;
  while (true) {
    const Piece& p = pieces_[idx];
    const LocalTime value_from = p.value + p.slope * (h_from - p.h_start);
    const bool is_last = idx + 1 == pieces_.size();
    const LocalTime h_end = is_last ? kTimeInfinity : pieces_[idx + 1].h_start;
    if (p.slope > 0) {
      const LocalTime h_hit = h_from + (target - value_from) / p.slope;
      if (h_hit <= h_end) return hw_->when_reads(h_hit);
    }
    ST_ASSERT(!is_last, "LogicalClock::when_reads: target unreachable (non-positive tail slope)");
    // Jump boundary: if the jump carries the value past `target`, the clock
    // first reads >= target exactly at the boundary.
    if (pieces_[idx + 1].value >= target) return hw_->when_reads(h_end);
    h_from = h_end;
    ++idx;
  }
}

double LogicalClock::rate_at(RealTime t) const {
  const LocalTime h = hw_->read(t);
  return pieces_[piece_at(h)].slope * hw_->rate_at(t);
}

}  // namespace stclock
