#pragma once

#include <functional>

#include "sim/process.h"
#include "util/types.h"

/// The paper's broadcast-primitive abstraction.
///
/// Srikanth & Toueg reduce fault-tolerant clock synchronization to a
/// broadcast primitive with three properties. For a primitive whose
/// acceptance spread is D (a function of the network delay bound tdel):
///
///  - Correctness: if f+1 correct processes broadcast (round k) by time t,
///    every correct process accepts (round k) by t + D.
///  - Unforgeability: if no correct process has broadcast (round k) by time
///    t, no correct process accepts (round k) at or before t.
///  - Relay: if a correct process accepts (round k) at time t, every correct
///    process accepts (round k) by t + D.
///
/// Two implementations exist: AuthBroadcast (digital signatures, n >= 2f+1,
/// D = tdel) and EchoBroadcast (no signatures, n >= 3f+1, D = 2*tdel). The
/// synchronization protocol in core/ is written against this interface and
/// is agnostic to which implementation it runs over.
namespace stclock {

/// Quorum-aware threshold scaling for sparse broadcast fabrics.
///
/// On the complete graph a node hears all n - 1 peers, and the paper's
/// absolute thresholds (f + 1 signatures, 2f + 1 echoes) are both reachable
/// and unforgeable. On a fabric where each node hears only `fanin` peers
/// (a k-regular expander row, or a sampled peer set), the absolute
/// thresholds may exceed what a node can ever hear; the quorum-aware rule
/// keeps the *proportion* instead:
///
///   threshold(fanin) = 1 + floor((full - 1) * fanin / (n - 1))
///
/// which equals `full` at fanin = n - 1 (so full-fan-in runs keep the
/// paper's exact thresholds, bit for bit) and never drops below 1. A
/// uniformly drawn peer set of size s contains, in expectation, its
/// proportional share of the at-most-f faulty processes, so the scaled
/// quorum preserves unforgeability *with overwhelming probability* rather
/// than absolutely — the standard trade when porting full-broadcast
/// protocols to sampled gossip fabrics (the paper's absolute guarantee
/// needs the complete graph). fanin == 0 means "the full fleet" and always
/// returns the paper's threshold.
[[nodiscard]] inline std::uint32_t scaled_threshold(std::uint32_t full, std::uint32_t n,
                                                    std::uint32_t fanin) {
  if (fanin == 0 || n <= 1 || fanin >= n - 1) return full;
  const auto share =
      static_cast<std::uint64_t>(full - 1) * fanin / (n - 1);
  return 1 + static_cast<std::uint32_t>(share);
}

class BroadcastPrimitive {
 public:
  virtual ~BroadcastPrimitive() = default;

  using AcceptHandler = std::function<void(Context&, Round)>;

  /// Installs the acceptance callback. Fired at most once per round.
  void set_accept_handler(AcceptHandler handler) { on_accept_ = std::move(handler); }

  /// Called by the protocol when this node's logical clock reaches k*P: the
  /// node broadcasts its "ready for round k" message.
  virtual void broadcast_ready(Context& ctx, Round k) = 0;

  /// Feeds an incoming message. Returns true iff the message belonged to
  /// this primitive (others are left to the caller).
  virtual bool handle_message(Context& ctx, NodeId from, const Message& m) = 0;

  /// Discards state for rounds below `floor` and ignores any later messages
  /// for them. Acceptance for forgotten rounds can no longer fire; callers
  /// invoke this only after they have processed (or superseded) a round.
  virtual void forget_below(Round floor) = 0;

  /// The acceptance-spread constant D of this implementation as a function
  /// of the network's delay bound.
  [[nodiscard]] virtual Duration accept_spread(Duration tdel) const = 0;

  /// Fault injection: scramble primitive-private memory (round floors,
  /// signature/echo buffers) with draws from the corruption stream. Default:
  /// nothing to scramble.
  virtual void corrupt_state(Rng& /*rng*/) {}

  /// Self-stabilization hook: clamp any internal state a corruption may have
  /// scrambled so traffic for rounds >= `expected_floor` flows again (a
  /// floor scrambled above the live round otherwise leaves the node
  /// permanently deaf). Must be a no-op on an uncorrupted primitive whose
  /// floor is already <= expected_floor. Default: stateless, nothing to do.
  virtual void stabilize(Round /*expected_floor*/) {}

 protected:
  void deliver_accept(Context& ctx, Round k) {
    if (on_accept_) on_accept_(ctx, k);
  }

 private:
  AcceptHandler on_accept_;
};

}  // namespace stclock
